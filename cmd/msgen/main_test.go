package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestGenerateChain(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "chain", "-p", "5", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	dec, err := platform.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != "chain" || dec.Chain.Len() != 5 {
		t.Errorf("decoded %+v", dec)
	}
}

func TestGenerateSpiderAndFork(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "spider", "-legs", "4", "-depth", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	dec, err := platform.Read(&out)
	if err != nil || dec.Kind != "spider" || dec.Spider.NumLegs() != 4 {
		t.Errorf("spider: %v %+v", err, dec)
	}

	out.Reset()
	if err := run([]string{"-kind", "fork", "-p", "3", "-regime", "bimodal"}, &out); err != nil {
		t.Fatal(err)
	}
	dec, err = platform.Read(&out)
	if err != nil || dec.Kind != "fork" || dec.Fork.Len() != 3 {
		t.Errorf("fork: %v %+v", err, dec)
	}
}

// TestGenerateTreeRoundTrip: -kind tree emits a valid tagged envelope
// that round-trips through the platform codec — shape, parameters and
// fingerprint intact — and the depth/branch knobs bound the shape.
func TestGenerateTreeRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "tree", "-depth", "3", "-branch", "3", "-seed", "11", "-regime", "bimodal"}, &out); err != nil {
		t.Fatal(err)
	}
	dec, err := platform.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != "tree" || dec.Tree == nil {
		t.Fatalf("decoded %+v, want a tree", dec)
	}
	if err := dec.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := dec.Tree.NumProcs(); got < 1 || got > 3+9+27 {
		t.Errorf("tree has %d processors, outside the depth-3 branch-3 bound", got)
	}
	var depthOf func(n platform.TreeNode) int
	depthOf = func(n platform.TreeNode) int {
		if len(n.Children) > 3 {
			t.Fatalf("node has %d children, branch cap is 3", len(n.Children))
		}
		d := 1
		for _, c := range n.Children {
			if cd := 1 + depthOf(c); cd > d {
				d = cd
			}
		}
		return d
	}
	for _, r := range dec.Tree.Roots {
		if d := depthOf(r); d > 3 {
			t.Errorf("tree depth %d exceeds the knob", d)
		}
	}

	// Re-encode and re-decode: the fingerprint must survive the trip.
	var buf bytes.Buffer
	if err := platform.WriteTree(&buf, *dec.Tree); err != nil {
		t.Fatal(err)
	}
	again, err := platform.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if platform.HashTree(*again.Tree) != platform.HashTree(*dec.Tree) {
		t.Error("tree fingerprint changed across an encode/decode round trip")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-kind", "chain", "-p", "6", "-seed", "42"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "chain", "-p", "6", "-seed", "42"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different platforms")
	}
}

func TestScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2", "volunteer", "bus"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("scenario list missing %q", name)
		}
	}

	out.Reset()
	if err := run([]string{"-scenario", "fig2"}, &out); err != nil {
		t.Fatal(err)
	}
	dec, err := platform.Read(&out)
	if err != nil || dec.Kind != "chain" {
		t.Fatalf("fig2 scenario: %v %+v", err, dec)
	}
	if dec.Chain.Work(1) != 3 || dec.Chain.Work(2) != 5 {
		t.Errorf("fig2 = %v, want w=(3,5)", dec.Chain)
	}

	out.Reset()
	if err := run([]string{"-scenario", "volunteer"}, &out); err != nil {
		t.Fatal(err)
	}
	if dec, err := platform.Read(&out); err != nil || dec.Kind != "spider" {
		t.Errorf("volunteer scenario: %v", err)
	}

	out.Reset()
	if err := run([]string{"-scenario", "star"}, &out); err != nil {
		t.Fatal(err)
	}
	if dec, err := platform.Read(&out); err != nil || dec.Kind != "fork" {
		t.Errorf("star scenario: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "ring"},
		{"-regime", "zipf"},
		{"-scenario", "nope"},
		{"-lo", "0"},
		{"-kind", "tree", "-branch", "0"},
		{"-kind", "tree", "-depth", "0"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
