// Command msgen generates random or named platform instances as tagged
// JSON for the other tools.
//
// Usage:
//
//	msgen -kind chain -p 8 -seed 1 -lo 1 -hi 9 -regime bimodal
//	msgen -kind spider -legs 4 -depth 3
//	msgen -kind fork -p 6
//	msgen -kind tree -depth 3 -branch 3
//	msgen -scenario volunteer       # named scenarios (see -scenarios)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/platform"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("msgen", flag.ContinueOnError)
	var (
		kind       = fs.String("kind", "chain", "chain | spider | fork | tree")
		p          = fs.Int("p", 4, "processors (chain) or slaves (fork)")
		legs       = fs.Int("legs", 3, "legs (spider)")
		depth      = fs.Int("depth", 2, "max leg depth (spider) or max node depth (tree)")
		branch     = fs.Int("branch", 2, "max children per node (tree)")
		seed       = fs.Int64("seed", 1, "random seed")
		lo         = fs.Int64("lo", 1, "minimum c/w value")
		hi         = fs.Int64("hi", 9, "maximum c/w value")
		regimeName = fs.String("regime", "uniform", "uniform | comm-bound | compute-bound | bimodal")
		scenario   = fs.String("scenario", "", "emit a named scenario instead of a random instance")
		listScen   = fs.Bool("scenarios", false, "list named scenarios and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listScen {
		chains, spiders, forks := workload.Named()
		var names []string
		for n := range chains {
			names = append(names, n)
		}
		for n := range spiders {
			names = append(names, n)
		}
		for n := range forks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			desc, err := workload.Describe(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10s %s\n", n, desc)
		}
		return nil
	}

	if *scenario != "" {
		chains, spiders, forks := workload.Named()
		if ch, ok := chains[*scenario]; ok {
			return platform.WriteChain(out, ch)
		}
		if sp, ok := spiders[*scenario]; ok {
			return platform.WriteSpider(out, sp)
		}
		if f, ok := forks[*scenario]; ok {
			return platform.WriteFork(out, f)
		}
		return fmt.Errorf("unknown scenario %q (use -scenarios)", *scenario)
	}

	regime, err := cli.ParseRegime(*regimeName)
	if err != nil {
		return err
	}
	g, err := platform.NewGenerator(*seed, platform.Time(*lo), platform.Time(*hi), regime)
	if err != nil {
		return err
	}
	switch *kind {
	case "chain":
		return platform.WriteChain(out, g.Chain(*p))
	case "spider":
		return platform.WriteSpider(out, g.Spider(*legs, *depth))
	case "fork":
		return platform.WriteFork(out, g.Fork(*p))
	case "tree":
		if *branch < 1 {
			return fmt.Errorf("tree branching factor %d is not positive", *branch)
		}
		if *depth < 1 {
			return fmt.Errorf("tree depth %d is not positive", *depth)
		}
		return platform.WriteTree(out, g.Tree(*depth, *branch))
	default:
		return fmt.Errorf("unknown kind %q (want chain, spider, fork or tree)", *kind)
	}
}
