package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/platform"
	"repro/internal/sched"
)

func TestRunChainInline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-chain", "2,3,3,5", "-n", "5", "-gantt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"makespan: 14", "task 1", "link 1", "steady-state lower bound"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestRunSpiderInline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-spider", "2,3,3,5;1,4", "-n", "6"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spider schedule: 6 tasks") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunDeadlineMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-chain", "2,3,3,5", "-n", "9", "-deadline", "14"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deadline 14: scheduled 5 of 9 tasks") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunPlatformFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.WriteFork(f, platform.NewFork(1, 3, 2, 2)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-platform", path, "-n", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spider schedule: 4 tasks") {
		t.Errorf("fork platform not scheduled as spider:\n%s", out.String())
	}
}

// TestRunTreePlatformFile: a tree platform file schedules through the
// unified API — the §8 cover — and the JSON artifact is a feasible
// spider schedule matching direct repro.ScheduleTree.
func TestRunTreePlatformFile(t *testing.T) {
	tr := repro.Tree{Roots: []repro.TreeNode{
		{Comm: 1, Work: 4, Children: []repro.TreeNode{
			{Comm: 1, Work: 2},
			{Comm: 2, Work: 3},
		}},
		{Comm: 3, Work: 2},
	}}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.WriteTree(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	js := filepath.Join(dir, "s.json")
	var out bytes.Buffer
	if err := run([]string{"-platform", path, "-n", "8", "-json", js}, &out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"platform: tree{", "spider schedule: 8 tasks", "steady-state lower bound"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}

	wantMk, wantSched, _, err := repro.ScheduleTree(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("makespan: %d", wantMk)) {
		t.Errorf("output does not carry ScheduleTree's makespan %d:\n%s", wantMk, out.String())
	}
	jf, err := os.Open(js)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	dec, err := sched.ReadSchedule(jf)
	if err != nil || dec.Kind != "spider" {
		t.Fatalf("tree schedule artifact: %v %+v", err, dec)
	}
	if !dec.Spider.Equal(wantSched) {
		t.Error("artifact schedule differs from direct repro.ScheduleTree")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "g.svg")
	js := filepath.Join(dir, "s.json")
	var out bytes.Buffer
	err := run([]string{"-chain", "2,3,3,5", "-n", "3", "-svg", svg, "-json", js}, &out)
	if err != nil {
		t.Fatal(err)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil || !strings.HasPrefix(string(svgData), "<svg") {
		t.Errorf("SVG artifact broken: %v", err)
	}
	jf, err := os.Open(js)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	dec, err := sched.ReadSchedule(jf)
	if err != nil || dec.Kind != "chain" || dec.Chain.Len() != 3 {
		t.Errorf("JSON artifact broken: %v %+v", err, dec)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // no platform
		{"-chain", "1,2", "-spider", "1,2"}, // two platforms
		{"-chain", "0,2", "-n", "1"},        // invalid chain
		{"-spider", "oops", "-n", "1"},      // unparsable spider
		{"-platform", "/does/not/exist", "-n", "1"}, // missing file
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestRunMalformedPlatformFiles: every malformed platform file must
// produce a clear error — naming what went wrong — and never a panic.
func TestRunMalformedPlatformFiles(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantMsg string
	}{
		{"not json", `this is not json`, "decoding platform file"},
		{"array envelope", `[1,2,3]`, "decoding platform file"},
		{"unknown kind", `{"kind":"noodle"}`, "unknown platform kind"},
		{"missing body", `{"kind":"chain"}`, "decoding chain body"},
		{"null body", `{"kind":"chain","chain":null}`, "chain has no processors"},
		{"wrong body shape", `{"kind":"chain","chain":[]}`, "decoding chain body"},
		{"empty chain", `{"kind":"chain","chain":{"nodes":[]}}`, "chain has no processors"},
		{"zero latency", `{"kind":"spider","spider":{"legs":[{"nodes":[{"c":0,"w":1}]}]}}`, "link latency 0 is not positive"},
		{"negative work", `{"kind":"fork","fork":{"slaves":[{"c":1,"w":-3}]}}`, "processing time -3 is not positive"},
		{"empty fork", `{"kind":"fork","fork":{"slaves":[]}}`, "fork has no slaves"},
		{"empty spider", `{"kind":"spider","spider":{"legs":[]}}`, "spider has no legs"},
		{"truncated file", `{"kind":"spider","spider":{"legs":[{"nodes":[{"c":`, "decoding platform file"},
		{"empty tree", `{"kind":"tree","tree":{"roots":[]}}`, "tree: no processors"},
		{"tree zero work", `{"kind":"tree","tree":{"roots":[{"c":1,"w":2,"children":[{"c":3,"w":0}]}]}}`, "non-positive parameters"},
		{"oversized tree node", `{"kind":"tree","tree":{"roots":[{"c":1,"w":1,"children":[{"c":4611686018427387904,"w":4611686018427387904}]}]}}`, "overflows the integral time range"},
		{"overflowing values", `{"kind":"chain","chain":{"nodes":[{"c":4611686018427387904,"w":4611686018427387904}]}}`, "overflows the integral time range"},
		{"values wrapping positive", `{"kind":"chain","chain":{"nodes":[{"c":9223372036854775807,"w":1}]}}`, "overflows the integral time range"},
		{"oversized leg beside sane leg", `{"kind":"spider","spider":{"legs":[{"nodes":[{"c":1,"w":1}]},{"nodes":[{"c":4611686018427387904,"w":4611686018427387904}]}]}}`, "overflows the integral time range"},
		{"oversized deep node behind sane head", `{"kind":"chain","chain":{"nodes":[{"c":1,"w":1},{"c":4611686018427387904,"w":1},{"c":4611686018427387904,"w":1},{"c":4611686018427387904,"w":1}]}}`, "overflows the integral time range"},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".json")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			err := run([]string{"-platform", path, "-n", "3"}, &out)
			if err == nil {
				t.Fatalf("malformed platform accepted; output:\n%s", out.String())
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
			if strings.Contains(err.Error(), "internal error") {
				t.Errorf("malformed input surfaced as an internal error: %q", err)
			}
		})
	}
}

func TestRunSlowReferencePathMatchesFast(t *testing.T) {
	// -slow routes through the unmemoized reference solver; the printed
	// schedule and makespan must be identical to the fast path.
	var fast, slow bytes.Buffer
	if err := run([]string{"-spider", "2,5,3,3;1,4", "-n", "6"}, &fast); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spider", "2,5,3,3;1,4", "-n", "6", "-slow"}, &slow); err != nil {
		t.Fatal(err)
	}
	if fast.String() != slow.String() {
		t.Errorf("outputs diverge:\nfast:\n%s\nslow:\n%s", fast.String(), slow.String())
	}
	var slowDeadline bytes.Buffer
	if err := run([]string{"-spider", "2,5,3,3;1,4", "-n", "6", "-deadline", "12", "-slow"}, &slowDeadline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(slowDeadline.String(), "deadline 12") {
		t.Errorf("deadline -slow output missing summary: %s", slowDeadline.String())
	}
}
