package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/sched"
)

func TestRunChainInline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-chain", "2,3,3,5", "-n", "5", "-gantt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"makespan: 14", "task 1", "link 1", "steady-state lower bound"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestRunSpiderInline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-spider", "2,3,3,5;1,4", "-n", "6"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spider schedule: 6 tasks") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunDeadlineMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-chain", "2,3,3,5", "-n", "9", "-deadline", "14"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deadline 14: scheduled 5 of 9 tasks") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunPlatformFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.WriteFork(f, platform.NewFork(1, 3, 2, 2)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-platform", path, "-n", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spider schedule: 4 tasks") {
		t.Errorf("fork platform not scheduled as spider:\n%s", out.String())
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "g.svg")
	js := filepath.Join(dir, "s.json")
	var out bytes.Buffer
	err := run([]string{"-chain", "2,3,3,5", "-n", "3", "-svg", svg, "-json", js}, &out)
	if err != nil {
		t.Fatal(err)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil || !strings.HasPrefix(string(svgData), "<svg") {
		t.Errorf("SVG artifact broken: %v", err)
	}
	jf, err := os.Open(js)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	dec, err := sched.ReadSchedule(jf)
	if err != nil || dec.Kind != "chain" || dec.Chain.Len() != 3 {
		t.Errorf("JSON artifact broken: %v %+v", err, dec)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // no platform
		{"-chain", "1,2", "-spider", "1,2"}, // two platforms
		{"-chain", "0,2", "-n", "1"},        // invalid chain
		{"-spider", "oops", "-n", "1"},      // unparsable spider
		{"-platform", "/does/not/exist", "-n", "1"}, // missing file
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestRunSlowReferencePathMatchesFast(t *testing.T) {
	// -slow routes through the unmemoized reference solver; the printed
	// schedule and makespan must be identical to the fast path.
	var fast, slow bytes.Buffer
	if err := run([]string{"-spider", "2,5,3,3;1,4", "-n", "6"}, &fast); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spider", "2,5,3,3;1,4", "-n", "6", "-slow"}, &slow); err != nil {
		t.Fatal(err)
	}
	if fast.String() != slow.String() {
		t.Errorf("outputs diverge:\nfast:\n%s\nslow:\n%s", fast.String(), slow.String())
	}
	var slowDeadline bytes.Buffer
	if err := run([]string{"-spider", "2,5,3,3;1,4", "-n", "6", "-deadline", "12", "-slow"}, &slowDeadline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(slowDeadline.String(), "deadline 12") {
		t.Errorf("deadline -slow output missing summary: %s", slowDeadline.String())
	}
}
