// Command msched computes optimal master-slave schedules (Dutot, IPPS
// 2003) for chains, spiders, forks and general trees.
//
// Usage:
//
//	msched -chain 2,5,3,3 -n 5 [-deadline 20] [-gantt] [-svg out.svg] [-json out.json]
//	msched -spider "2,5,3,3;1,4" -n 10 [-gantt]
//	msched -platform platform.json -n 10
//
// The chain/spider specs are (c,w) pairs; see cmd/msgen to generate
// platform files (any kind, trees included — a tree schedules through
// its §8 spider cover). With -deadline the tool maximises the number of
// tasks completed by the deadline instead of minimising the makespan.
//
// Every topology routes through the unified repro.Platform /
// repro.Solver API — one code path from the parsed platform to the
// printed schedule. The -slow flag routes spider scheduling through the
// unmemoized reference solver (identical output, rebuilt from scratch
// at every deadline probe) for cross-checking the fast path in the
// field.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/cli"
	"repro/internal/platform"
	"repro/internal/spider"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	// A malformed input must exit with a clear message, never a panic:
	// turn any escaped panic into an error so main reports it and exits
	// non-zero.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	fs := flag.NewFlagSet("msched", flag.ContinueOnError)
	var (
		chainSpec  = fs.String("chain", "", "inline chain spec: c1,w1,c2,w2,...")
		spiderSpec = fs.String("spider", "", "inline spider spec: leg;leg;... (each leg a chain spec)")
		platPath   = fs.String("platform", "", "platform JSON file (see msgen; any kind, trees included)")
		n          = fs.Int("n", 1, "number of tasks")
		deadline   = fs.Int64("deadline", -1, "maximise tasks completed by this deadline instead of minimising makespan")
		showGantt  = fs.Bool("gantt", false, "print an ASCII Gantt chart")
		scale      = fs.Int64("scale", 1, "Gantt time units per character")
		svgPath    = fs.String("svg", "", "also write an SVG Gantt chart to this file")
		jsonPath   = fs.String("json", "", "also write the schedule as JSON to this file")
		slow       = fs.Bool("slow", false, "use the unmemoized reference spider solver (identical schedules; for cross-checking)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := resolvePlatform(*chainSpec, *spiderSpec, *platPath)
	if err != nil {
		return err
	}
	return schedule(out, p, *n, *deadline, *slow, *showGantt, platform.Time(*scale), *svgPath, *jsonPath)
}

// resolvePlatform turns the flags into one Platform. Fork files load as
// their single-node-leg spider form, keeping the historical output.
func resolvePlatform(chainSpec, spiderSpec, platPath string) (repro.Platform, error) {
	given := 0
	for _, s := range []string{chainSpec, spiderSpec, platPath} {
		if s != "" {
			given++
		}
	}
	if given != 1 {
		return nil, fmt.Errorf("give exactly one of -chain, -spider or -platform")
	}
	switch {
	case chainSpec != "":
		return cli.ParseChain(chainSpec)
	case spiderSpec != "":
		return cli.ParseSpider(spiderSpec)
	default:
		dec, err := cli.LoadPlatform(platPath)
		if err != nil {
			return nil, err
		}
		switch dec.Kind {
		case "chain":
			return *dec.Chain, nil
		case "spider":
			return *dec.Spider, nil
		case "tree":
			return *dec.Tree, nil
		default: // fork
			return dec.Fork.Spider(), nil
		}
	}
}

// schedule runs one query through the unified Solver API and prints the
// result; the -slow spider reference path produces identical schedules
// through the historical solver. The horizon check rejects platforms
// whose n-task arithmetic would overflow: oversized (c, w) values or
// task counts would otherwise surface as baffling internal errors — or
// wrapped, silently wrong schedules — deep in the solver.
func schedule(out io.Writer, p repro.Platform, n int, deadline int64, slow, showGantt bool, scale platform.Time, svgPath, jsonPath string) error {
	if err := p.CheckHorizon(n); err != nil {
		return err
	}
	var (
		s   repro.Schedule
		err error
	)
	if sp, isSpider := p.(repro.Spider); slow && isSpider {
		switch {
		case deadline >= 0:
			s, err = spider.ReferenceScheduleWithin(sp, n, platform.Time(deadline))
		default:
			s, err = spider.ReferenceSchedule(sp, n)
		}
	} else {
		var solver repro.Solver
		solver, err = repro.NewSolver(p)
		if err != nil {
			return err
		}
		if deadline >= 0 {
			s, err = solver.ScheduleWithin(n, platform.Time(deadline))
		} else {
			_, s, err = solver.MinMakespan(n)
		}
	}
	if err != nil {
		return err
	}
	if err := s.Verify(); err != nil {
		return fmt.Errorf("internal error: produced an infeasible schedule: %w", err)
	}
	fmt.Fprintf(out, "platform: %s\n", p)
	if deadline >= 0 {
		fmt.Fprintf(out, "deadline %d: scheduled %d of %d tasks\n", deadline, s.Len(), n)
	}
	fmt.Fprint(out, s)
	fmt.Fprintf(out, "makespan: %d\n", s.Makespan())
	if lb, err := p.LowerBound(s.Len()); err == nil {
		fmt.Fprintf(out, "steady-state lower bound: %d\n", lb)
	}
	if showGantt {
		fmt.Fprintln(out)
		fmt.Fprint(out, repro.GanttASCII(s.Intervals(), scale))
	}
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(repro.GanttSVG(s.Intervals(), 8)), 0o644); err != nil {
			return fmt.Errorf("writing SVG: %w", err)
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return fmt.Errorf("writing schedule JSON: %w", err)
		}
		defer f.Close()
		return repro.WriteSchedule(f, s)
	}
	return nil
}
