package main

import (
	"os"
	"testing"

	"repro/internal/experiments"
)

// TestNoBenchRegressionAgainstSeed guards the E5/E5c hot-path families
// against >20% regressions relative to the committed seed-era baseline
// (BENCH_seed.json, dumped by `msbench -json -reference`). The
// comparison scales by a calibration workload measured in both runs, so
// the check tracks algorithmic regressions rather than machine speed.
// The seed spider numbers come from the unmemoized reference solver,
// which the memoized solver beats severalfold — the bar therefore has
// wide headroom and a genuine regression is what it takes to trip it.
func TestNoBenchRegressionAgainstSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark regression guard skipped in -short mode")
	}
	f, err := os.Open("../../BENCH_seed.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_seed.json not present; regenerate with: msbench -json BENCH_seed.json -reference")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	baseline, err := experiments.ReadBenchBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := experiments.MeasureBenchBaseline(false)
	if err != nil {
		t.Fatal(err)
	}
	regs := experiments.CompareBenchBaselines(baseline, cur, 1.2)
	if len(regs) > 0 {
		// Transient CPU contention — the rest of the suite running in
		// parallel — can push a cell a few percent past the bar; a
		// genuine algorithmic regression reproduces on a re-measure.
		t.Logf("re-measuring %d flagged cells: %v", len(regs), regs)
		cur, err = experiments.MeasureBenchBaseline(false)
		if err != nil {
			t.Fatal(err)
		}
		regs = experiments.CompareBenchBaselines(baseline, cur, 1.2)
	}
	for _, reg := range regs {
		t.Error(reg)
	}
}

// TestBenchBaselineRoundTrip checks the dump/parse/compare plumbing on
// synthetic numbers, independent of wall-clock noise.
func TestBenchBaselineRoundTrip(t *testing.T) {
	base := &experiments.BenchBaseline{
		Note:          "synthetic",
		CalibrationNs: 1000,
		Points: []experiments.BenchPoint{
			{Family: "E5-chain", Size: 512, NsPerOp: 10000},
			{Family: "E5c-spider", Size: 128, NsPerOp: 40000},
		},
	}
	// A run on a machine 2x slower (calibration 2000): the same
	// algorithmic speed measures 20000/80000, within tolerance; a 3x
	// slowdown of one family must be flagged.
	cur := &experiments.BenchBaseline{
		CalibrationNs: 2000,
		Points: []experiments.BenchPoint{
			{Family: "E5-chain", Size: 512, NsPerOp: 21000},
			{Family: "E5c-spider", Size: 128, NsPerOp: 240000},
		},
	}
	regs := experiments.CompareBenchBaselines(base, cur, 1.2)
	if len(regs) != 1 {
		t.Fatalf("want exactly the spider regression flagged, got %v", regs)
	}
}
