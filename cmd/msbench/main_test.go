package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSelectedExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "E1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig. 2") || !strings.Contains(s, "E1 completed") {
		t.Errorf("E1 output incomplete:\n%s", s)
	}
	if strings.Contains(s, "E2:") {
		t.Error("unselected experiment ran")
	}
}

func TestRunMultipleAndCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-run", "E1, E2", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 { // E1 has 2 tables, E2 has 1
		t.Errorf("expected >=3 CSV files, got %d", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "e1_table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "task,") {
		t.Errorf("CSV content wrong: %q", string(data)[:20])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestProfileFlags exercises -cpuprofile/-memprofile around a real (if
// tiny) run: both profile files must exist and be non-empty afterwards.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-run", "E1", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}
