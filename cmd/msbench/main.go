// Command msbench runs the reproduction experiment suite: every figure
// and validated claim of the paper (DESIGN.md §5, EXPERIMENTS.md).
//
// Usage:
//
//	msbench                 # run everything
//	msbench -run E1,E4      # selected experiments
//	msbench -list           # list experiments
//	msbench -csv dir/       # also dump each table as CSV under dir/
//	msbench -json file      # dump the E5/E5c/E5w/E5p/E6 regression baseline as JSON
//	msbench -cpuprofile f   # profile the run's CPU (any mode)
//	msbench -memprofile f   # dump a heap profile at exit (any mode)
//
// The -json dump measures the hot-path families (chain and spider
// solvers, the wide-platform packing, the warm probe loop and the
// E6-cold construction cells) with a calibration workload and writes a
// machine-portable baseline; the
// committed BENCH_seed.json froze the pre-optimisation numbers (add
// -reference to reproduce that mode) and the regression test in this
// package flags >20% slowdowns against it. Spider-family points carry
// probes_per_solve — the deadline-search telemetry of one cold solve —
// and most cells carry phase_ns, the phase-by-phase wall-time breakdown
// (construct/dedup/merge/pack/extract) of one extra traced run taken
// outside the timed reps; both are context the comparison ignores.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("msbench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiments and exit")
		runIDs     = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		csvDir     = fs.String("csv", "", "also write each table as CSV under this directory")
		jsonPath   = fs.String("json", "", "measure the E5/E5c/E5w/E5p/E6 regression families and write the baseline JSON here")
		refSolve   = fs.Bool("reference", false, "with -json: measure the spider family with the unmemoized reference solver, the wide family with the slice-based packer, the probe loop with from-scratch probing and the E6-cold cells with leg dedup off")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (taken at exit, after a GC) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Profiling wraps whatever the invocation does — the experiment
	// suite or the -json families — so hot-path investigations profile
	// exactly the workload they will be judged by.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "msbench: creating heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "msbench: writing heap profile:", err)
			}
		}()
	}

	if *jsonPath != "" {
		b, err := experiments.MeasureBenchBaseline(*refSolve)
		if err != nil {
			return fmt.Errorf("measuring bench baseline: %w", err)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("writing bench baseline: %w", err)
		}
		defer f.Close()
		if err := b.WriteJSON(f); err != nil {
			return fmt.Errorf("writing bench baseline: %w", err)
		}
		fmt.Fprintf(out, "wrote %d baseline points to %s (%s)\n", len(b.Points), *jsonPath, b.Note)
		return nil
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Fprintf(out, "%-4s %-28s %s\n", e.ID, e.Name, e.Paper)
		}
		return nil
	}

	selected := all
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating CSV directory: %w", err)
		}
	}

	for _, e := range selected {
		fmt.Fprintf(out, "=== %s: %s (%s)\n", e.ID, e.Name, e.Paper)
		start := time.Now()
		rep, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprint(out, rep.Format())
		fmt.Fprintf(out, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			for i := range rep.Tables {
				name := fmt.Sprintf("%s_table%d.csv", strings.ToLower(e.ID), i+1)
				path := filepath.Join(*csvDir, name)
				if err := os.WriteFile(path, []byte(rep.Tables[i].CSV()), 0o644); err != nil {
					return fmt.Errorf("writing %s: %w", path, err)
				}
			}
		}
	}
	return nil
}
