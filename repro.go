// Package repro is an open-source reproduction of Pierre-François Dutot,
// "Master-slave Tasking on Heterogeneous Processors" (IPPS 2003): optimal
// scheduling of n identical independent tasks from a master across
// heterogeneous processor chains and spider graphs, under one-port
// communication with communication/computation overlap.
//
// The public API is built around two interfaces: Platform — the
// uniform surface Chain, Spider, Fork and Tree all implement (Kind,
// Hash, Throughput, LowerBound, Validate) — and Solver, a warmed
// per-platform engine obtained via NewSolver that answers MinMakespan,
// MaxTasks and ScheduleWithin queries, amortising the expensive
// backward constructions (and, for trees, the §8 spider cover) across
// calls. One code path serves all four topologies; see ExamplePlatform.
//
// The historical per-topology functions remain as thin wrappers over
// the same engines:
//
//   - ScheduleChain: the O(n·p²) backward construction of §3 (Fig. 3),
//     makespan-optimal on chains (Theorem 1);
//   - ScheduleChainWithin: the deadline variant of §7 that maximises the
//     number of tasks completed by a time limit;
//   - ScheduleSpider / SpiderMinMakespan: the §7 algorithm for spider
//     graphs, optimal by Theorem 3, built on the fork-graph machinery of
//     Beaumont et al. recalled in §6;
//   - ForkMinMakespan / ForkMaxTasks: the §6 fork-graph comparator;
//   - ScheduleTree (tree.go): the §8 covering heuristic for general
//     trees;
//   - lower bounds and exact steady-state throughputs from the
//     divisible-load relaxation;
//   - Gantt rendering of any schedule.
//
// Deeper machinery (the exhaustive-search oracle, the discrete-event
// simulator, baseline heuristics, workload scenarios, the experiment
// harness) lives in internal/ packages; cmd/msbench regenerates every
// figure and validation table of the reproduction. The long-lived
// serving layer — an HTTP service answering (platform, n) queries from
// an LRU cache of warmed solvers keyed by PlatformHash, with
// singleflight coalescing — lives in internal/service and runs as
// cmd/msserve.
package repro

import (
	"io"
	"math/big"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fork"
	"repro/internal/gantt"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/spider"
	"repro/internal/trace"
)

// Core model types, re-exported.
type (
	// Time is an instant or duration in integral task quantums.
	Time = platform.Time
	// Node is a processor with its incoming link: latency Comm, work Work.
	Node = platform.Node
	// Chain is a line of processors fed by the master (Fig. 1).
	Chain = platform.Chain
	// Spider is a bundle of chains fed by a one-port master (Fig. 5).
	Spider = platform.Spider
	// Fork is a star: every slave one hop from the master (§6).
	Fork = platform.Fork
	// VirtualSlave is a single-task slave from the Fig. 6/Fig. 7
	// transformations.
	VirtualSlave = platform.VirtualSlave

	// ChainTask is one scheduled task on a chain: (P(i), T(i), C(i)).
	ChainTask = sched.ChainTask
	// ChainSchedule is a full schedule on a chain; Verify checks the
	// feasibility conditions of Definition 1.
	ChainSchedule = sched.ChainSchedule
	// SpiderTask is one scheduled task on a spider.
	SpiderTask = sched.SpiderTask
	// SpiderSchedule is a full schedule on a spider, including the
	// master's one-port constraint.
	SpiderSchedule = sched.SpiderSchedule

	// Interval is one resource occupation, for rendering and export.
	Interval = trace.Interval

	// PlatformHash is the canonical platform fingerprint: isomorphic
	// spiders (and their chain/fork equivalent forms) share a hash, so
	// it keys caches of warmed solvers — the scheduling service
	// (internal/service, cmd/msserve) is built on it.
	PlatformHash = platform.Hash
)

// NewChain builds a chain from alternating (c, w) pairs.
func NewChain(cw ...Time) Chain { return platform.NewChain(cw...) }

// NewSpider builds a spider from legs.
func NewSpider(legs ...Chain) Spider { return platform.NewSpider(legs...) }

// NewFork builds a fork from alternating (c, w) pairs.
func NewFork(cw ...Time) Fork { return platform.NewFork(cw...) }

// HashChain returns the canonical fingerprint of the chain (the hash
// of its equivalent one-leg spider).
func HashChain(ch Chain) PlatformHash { return platform.HashChain(ch) }

// HashSpider returns the canonical fingerprint of the spider,
// order-normalised over legs.
func HashSpider(sp Spider) PlatformHash { return platform.HashSpider(sp) }

// HashFork returns the canonical fingerprint of the fork (the hash of
// its spider form).
func HashFork(f Fork) PlatformHash { return platform.HashFork(f) }

// HashTree returns the canonical fingerprint of the tree,
// order-normalised over siblings at every level; a spider-shaped tree
// hashes as the spider it is.
func HashTree(t Tree) PlatformHash { return platform.HashTree(t) }

// ScheduleChain returns a makespan-optimal schedule of n tasks on the
// chain (Theorem 1), starting at time 0.
func ScheduleChain(ch Chain, n int) (*ChainSchedule, error) {
	s, err := core.Schedule(ch, n)
	return s, wrapKindErr("chain", err)
}

// ScheduleChainWithin schedules as many tasks as possible — at most n —
// completing within [0, deadline] (the §7 deadline variant; optimal in
// task count).
func ScheduleChainWithin(ch Chain, n int, deadline Time) (*ChainSchedule, error) {
	s, err := core.ScheduleWithin(ch, n, deadline)
	return s, wrapKindErr("chain", err)
}

// ScheduleSpider returns a makespan-optimal schedule of n tasks on the
// spider (Theorem 3).
func ScheduleSpider(sp Spider, n int) (*SpiderSchedule, error) {
	s, err := spider.Schedule(sp, n)
	return s, wrapKindErr("spider", err)
}

// ScheduleSpiderWithin schedules as many tasks as possible — at most n —
// on the spider within the deadline (Theorem 3).
func ScheduleSpiderWithin(sp Spider, n int, deadline Time) (*SpiderSchedule, error) {
	s, err := spider.ScheduleWithin(sp, n, deadline)
	return s, wrapKindErr("spider", err)
}

// SpiderMinMakespan returns the optimal makespan for n tasks on the
// spider together with a schedule achieving it.
func SpiderMinMakespan(sp Spider, n int) (Time, *SpiderSchedule, error) {
	mk, s, err := spider.MinMakespan(sp, n)
	return mk, s, wrapKindErr("spider", err)
}

// ForkMinMakespan returns the optimal makespan for n tasks on a fork
// graph together with a schedule achieving it (§6, after [2]).
func ForkMinMakespan(f Fork, n int) (Time, *SpiderSchedule, error) {
	mk, s, err := fork.MinMakespan(f, n)
	return mk, s, wrapKindErr("fork", err)
}

// ForkMaxTasks returns how many of at most n tasks complete on the fork
// within the deadline.
func ForkMaxTasks(f Fork, n int, deadline Time) (int, error) {
	k, err := fork.MaxTasks(f, n, deadline)
	return k, wrapKindErr("fork", err)
}

// ChainThroughput returns the exact steady-state task rate of the chain
// (the divisible-load relaxation; see internal/baseline).
func ChainThroughput(ch Chain) (*big.Rat, error) {
	r, err := baseline.ChainRate(ch)
	return r, wrapKindErr("chain", err)
}

// SpiderThroughput returns the exact steady-state task rate of the
// spider under the master's one-port constraint (the bandwidth-centric
// allocation of [2]).
func SpiderThroughput(sp Spider) (*big.Rat, error) {
	r, err := baseline.SpiderRate(sp)
	return r, wrapKindErr("spider", err)
}

// ChainLowerBound returns a proven lower bound on the optimal makespan
// of n tasks on the chain (steady-state rate plus startup latency).
func ChainLowerBound(ch Chain, n int) (Time, error) {
	lb, err := baseline.LowerBoundChain(ch, n)
	return lb, wrapKindErr("chain", err)
}

// SpiderLowerBound is ChainLowerBound for spiders.
func SpiderLowerBound(sp Spider, n int) (Time, error) {
	lb, err := baseline.LowerBoundSpider(sp, n)
	return lb, wrapKindErr("spider", err)
}

// GanttASCII renders occupation intervals as a terminal Gantt chart;
// scale is time units per character cell.
func GanttASCII(ivs []Interval, scale Time) string {
	return gantt.ASCII(ivs, scale)
}

// GanttSVG renders occupation intervals as a standalone SVG document.
func GanttSVG(ivs []Interval, pxPerUnit float64) string {
	return gantt.SVG(ivs, pxPerUnit)
}

// WriteIntervalsCSV exports intervals as CSV.
func WriteIntervalsCSV(w io.Writer, ivs []Interval) error {
	return trace.WriteCSV(w, ivs)
}
