// Layered networks: Li's reduction (reference [7] of the paper) turns a
// homogeneous grid with multi-port communication into a heterogeneous
// chain — exactly the topology the paper's core algorithm solves
// optimally. This example scales the task count on such a chain and
// compares the optimal backward schedule against forward heuristics and
// the steady-state lower bound.
//
//	go run ./examples/layered
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/baseline"
	"repro/internal/workload"
)

func main() {
	// 5 layers, per-hop latency 2, innermost layer aggregate speed 24.
	chain := workload.LayeredChain(5, 2, 24)
	fmt.Println("layered chain:", chain)

	rate, err := repro.ChainThroughput(chain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady-state rate: %s\n\n", baseline.RateString(rate))

	heuristics := []baseline.ChainScheduler{
		baseline.ForwardGreedy{},
		baseline.RoundRobin{},
		baseline.MasterOnly{},
	}

	fmt.Printf("%6s  %8s  %8s", "n", "optimal", "LB")
	for _, h := range heuristics {
		fmt.Printf("  %14s", h.Name())
	}
	fmt.Println()

	for _, n := range []int{10, 20, 40, 80, 160} {
		optimal, err := repro.ScheduleChain(chain, n)
		if err != nil {
			log.Fatal(err)
		}
		if err := optimal.Verify(); err != nil {
			log.Fatal("bug: optimal schedule must verify: ", err)
		}
		lb, err := repro.ChainLowerBound(chain, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %8d  %8d", n, optimal.Makespan(), lb)
		for _, h := range heuristics {
			s, err := h.Schedule(chain, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8d(%4.2fx)", s.Makespan(),
				float64(s.Makespan())/float64(optimal.Makespan()))
		}
		fmt.Println()
	}

	fmt.Println("\nNotes:")
	fmt.Println(" - optimal/n converges to 1/rate: the backward algorithm achieves")
	fmt.Println("   the divisible-load steady state exactly, plus a bounded startup.")
	fmt.Println(" - forward-greedy stays close on this link-bound chain but never")
	fmt.Println("   wins; master-only shows what ignoring the platform costs. The")
	fmt.Println("   E8 experiment (cmd/msbench) sweeps regimes where the heuristic")
	fmt.Println("   gaps widen.")
}
