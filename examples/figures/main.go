// Figures: regenerates every figure of the paper from the reproduction
// code — the platform sketches (Figs. 1 and 5), the worked schedule
// (Fig. 2) with its Gantt chart, the node expansion (Fig. 6) and the
// chain-to-fork transformation (Fig. 7) — and writes an SVG of the
// Fig. 2 schedule next to the terminal output.
//
//	go run ./examples/figures [-svg fig2.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	svgPath := flag.String("svg", "", "write the Fig. 2 Gantt chart as SVG to this path")
	flag.Parse()

	// Figs. 1 and 5 are the platform sketches.
	fmt.Println("Fig. 1 — a chain of heterogeneous processors:")
	fmt.Printf("  %s\n\n", workload.Fig2Chain())
	fmt.Println("Fig. 5 — a spider graph:")
	fmt.Printf("%s\n\n", workload.Fig5Spider())

	// Figs. 2, 6 and 7 are full experiments (E1-E3).
	for _, id := range []string{"E1", "E2", "E3"} {
		e, ok := experiments.ByID(id)
		if !ok {
			log.Fatalf("experiment %s missing", id)
		}
		rep, err := e.Run()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Print(rep.Format())
		fmt.Println()
	}

	if *svgPath != "" {
		s, err := repro.ScheduleChain(workload.Fig2Chain(), workload.Fig2TaskCount)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*svgPath, []byte(repro.GanttSVG(s.Intervals(), 24)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *svgPath)
	}
}
