// Volunteer computing: the paper's motivating scenario (SETI@home,
// GIMPS). A master distributes identical work units over a spider of
// wildly heterogeneous volunteers and we compare:
//
//   - the offline optimal schedule (Theorems 2-3),
//
//   - demand-driven online operation (how volunteer systems really
//     work), at several pipelining depths, via discrete-event
//     simulation,
//
//   - the steady-state upper bound on throughput.
//
//     go run ./examples/volunteer
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	spider := workload.VolunteerSpider()
	const tasks = 120

	fmt.Println("platform:", spider)
	fmt.Printf("volunteers: %d, work units: %d\n\n", spider.NumProcs(), tasks)

	// Offline optimum.
	makespan, schedule, err := repro.SpiderMinMakespan(spider, tasks)
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Verify(); err != nil {
		log.Fatal("bug: optimal schedule must verify: ", err)
	}
	fmt.Printf("offline optimal makespan: %d\n", makespan)
	counts := schedule.CountsByLeg()
	fmt.Print("  tasks per volunteer leg: ")
	fmt.Println(counts)

	// Online demand-driven operation at several pipelining depths.
	fmt.Println("\nonline (discrete-event simulated):")
	for _, credits := range []int{1, 2, 4} {
		res, err := sim.Run(spider, tasks, sim.NewPull(credits))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s makespan %5d  (%.2fx optimal)\n",
			res.Policy, res.Makespan, float64(res.Makespan)/float64(makespan))
	}
	res, err := sim.Run(spider, tasks, sim.NewRandomPush(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-18s makespan %5d  (%.2fx optimal)\n",
		res.Policy, res.Makespan, float64(res.Makespan)/float64(makespan))

	// Where does the time go? Busiest resources under pull(1).
	res, err = sim.Run(spider, tasks, sim.NewPull(1))
	if err != nil {
		log.Fatal(err)
	}
	type util struct {
		name string
		busy float64
	}
	var utils []util
	for name, busy := range res.Utilisation {
		utils = append(utils, util{name, float64(busy) / float64(res.Makespan)})
	}
	sort.Slice(utils, func(i, j int) bool { return utils[i].busy > utils[j].busy })
	fmt.Println("\nbusiest resources under pull(1):")
	for _, u := range utils[:min(5, len(utils))] {
		fmt.Printf("  %-16s %5.1f%%\n", u.name, 100*u.busy)
	}

	// The master's port is the shared bottleneck the paper's model
	// centres on; the steady-state rate quantifies it exactly.
	if rate, err := repro.SpiderThroughput(spider); err == nil {
		f, _ := rate.Float64()
		fmt.Printf("\nsteady-state throughput: %s (~%.3f tasks/unit)\n", rate.RatString(), f)
		fmt.Printf("=> %d tasks need at least ~%.0f time units\n", tasks, float64(tasks)/f)
	}
}
