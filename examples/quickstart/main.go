// Quickstart: schedule identical tasks optimally on a heterogeneous
// chain of processors and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's Fig. 2 platform: a master feeding two processors in a
	// line. Arguments are (c, w) pairs: link latency, processing time.
	chain := repro.NewChain(
		2, 3, // processor 1: link latency 2, processing time 3
		3, 5, // processor 2: link latency 3, processing time 5
	)

	// Schedule 5 tasks with the optimal backward algorithm (Theorem 1).
	schedule, err := repro.ScheduleChain(chain, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Every schedule knows how to verify itself against the feasibility
	// conditions of the paper's Definition 1.
	if err := schedule.Verify(); err != nil {
		log.Fatal("bug: optimal schedule must be feasible: ", err)
	}

	fmt.Printf("platform: %s\n\n", chain)
	fmt.Print(schedule)

	fmt.Printf("\nmakespan: %d (provably minimal)\n", schedule.Makespan())
	if lb, err := repro.ChainLowerBound(chain, 5); err == nil {
		fmt.Printf("steady-state relaxation bound: %d\n", lb)
	}
	if rate, err := repro.ChainThroughput(chain); err == nil {
		fmt.Printf("asymptotic throughput: %s tasks/unit\n", rate.RatString())
	}

	fmt.Println("\nGantt chart (digits = tasks, '.' = buffered wait):")
	fmt.Print(repro.GanttASCII(schedule.Intervals(), 1))
}
