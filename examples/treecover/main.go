// Tree covering: the paper's §8 closes with the long-term objective of
// scheduling general trees "by covering those graphs with simpler
// structures". This example builds a branchy tree of processors,
// extracts the best-rate spider cover, schedules it optimally
// (Theorem 3) and compares against the tree's steady-state bound.
//
//	go run ./examples/treecover
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A two-subtree platform: a fast cluster whose gateway fans out to
	// two workers, and a single remote machine.
	t := repro.Tree{Roots: []repro.TreeNode{
		{Comm: 1, Work: 4, Children: []repro.TreeNode{
			{Comm: 1, Work: 2},
			{Comm: 2, Work: 3, Children: []repro.TreeNode{
				{Comm: 1, Work: 1},
			}},
		}},
		{Comm: 3, Work: 2},
	}}
	fmt.Println("tree:", t)
	fmt.Println("processors:", t.NumProcs(), " already a spider:", t.IsSpider())

	rate, err := repro.TreeThroughput(t)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := rate.Float64()
	fmt.Printf("steady-state throughput of the FULL tree: %s (~%.3f tasks/unit)\n\n",
		rate.RatString(), f)

	const n = 24
	mk, schedule, cover, err := repro.ScheduleTree(t, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Verify(); err != nil {
		log.Fatal("bug: cover schedule must verify: ", err)
	}

	fmt.Println("spider cover (one best-rate path per subtree):")
	for b, leg := range cover.Spider.Legs {
		fmt.Printf("  leg %d: %s  (child path %v)\n", b, leg, cover.Paths[b])
	}

	lb, err := repro.TreeLowerBound(t, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d tasks: cover-heuristic makespan %d, full-tree lower bound %d\n", n, mk, lb)
	fmt.Printf("the heuristic is within %.2fx of what ANY schedule on the full tree could do\n",
		float64(mk)/float64(lb))
	fmt.Println("\nGantt of the cover schedule:")
	fmt.Print(repro.GanttASCII(schedule.Intervals(), 2))
}
