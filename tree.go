package repro

import (
	"math/big"

	"repro/internal/tree"
)

// Tree is a general rooted tree of processors — the paper's §8 future
// work, supported here through the spider-covering heuristic.
type Tree = tree.Tree

// TreeNode is one processor of a Tree.
type TreeNode = tree.Node

// TreeCover is the spider extracted from a tree by the covering
// heuristic, with the paths mapping spider legs back to tree nodes.
type TreeCover = tree.Cover

// TreeFromSpider embeds a spider as a tree.
func TreeFromSpider(sp Spider) Tree { return tree.FromSpider(sp) }

// ScheduleTree schedules n tasks on a general tree with the §8 covering
// heuristic: the best-rate downward path of every subtree forms a
// spider, scheduled optimally by the §7 algorithm. The returned
// schedule is expressed on the covering spider; uncovered processors
// idle, so it is feasible on the tree as-is. Exact whenever the tree is
// already a spider.
func ScheduleTree(t Tree, n int) (Time, *SpiderSchedule, *TreeCover, error) {
	mk, s, cov, err := tree.Schedule(t, n)
	return mk, s, cov, wrapKindErr("tree", err)
}

// TreeThroughput returns the exact steady-state task rate of the tree
// (recursive one-port bandwidth-centric allocation).
func TreeThroughput(t Tree) (*big.Rat, error) {
	r, err := tree.Rate(t)
	return r, wrapKindErr("tree", err)
}

// TreeLowerBound returns a proven lower bound on the optimal makespan
// of n tasks on the tree.
func TreeLowerBound(t Tree, n int) (Time, error) {
	lb, err := tree.LowerBound(t, n)
	return lb, wrapKindErr("tree", err)
}
