// Benchmarks regenerating the performance-shaped claims of the paper and
// the reproduction's own tables (DESIGN.md §5). One benchmark (family)
// per experiment:
//
//	E1  BenchmarkFig2Chain          — the worked example end to end
//	E4  BenchmarkChainVsBrute       — algorithm vs exhaustive oracle cost
//	E5  BenchmarkChainN / ChainP    — O(n·p²): linear in n, quadratic in p
//	E5c BenchmarkSpiderMinMakespan  — Theorem 2 polynomiality
//	E6  BenchmarkForkMinMakespan    — the §6 comparator
//	E8  BenchmarkBaselines          — heuristics vs the optimal algorithm
//	E9  BenchmarkBounds             — steady-state rate and lower bound
//	E10 BenchmarkSimulator          — DES with online policies
//
// Feasibility verification, the other hot path, is covered by
// BenchmarkVerifyChain.
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/spider"
	"repro/internal/workload"
)

func BenchmarkFig2Chain(b *testing.B) {
	ch := workload.Fig2Chain()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := core.Schedule(ch, workload.Fig2TaskCount)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkChainN(b *testing.B) {
	// E5a: fixed p, growing n — expect ns/op to grow linearly.
	g := platform.MustGenerator(1, 1, 9, platform.Uniform)
	ch := g.Chain(16)
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Schedule(ch, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChainP(b *testing.B) {
	// E5b: fixed n, growing p — expect ns/op to grow quadratically.
	g := platform.MustGenerator(2, 1, 9, platform.Uniform)
	for _, p := range []int{8, 32, 128} {
		ch := g.Chain(p)
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Schedule(ch, 512); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChainVsBrute(b *testing.B) {
	// E4: the polynomial algorithm against the exponential oracle on the
	// same instance (p=3, n=6) — the gap in ns/op is the point.
	g := platform.MustGenerator(3, 1, 9, platform.Uniform)
	ch := g.Chain(3)
	b.Run("algorithm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Schedule(ch, 6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := opt.BruteChain(ch, 6); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkForkMinMakespan(b *testing.B) {
	// E6: the fork comparator across sizes.
	g := platform.MustGenerator(4, 1, 9, platform.Bimodal)
	for _, slaves := range []int{4, 16} {
		f := g.Fork(slaves)
		for _, n := range []int{32, 128} {
			b.Run(fmt.Sprintf("slaves=%d/n=%d", slaves, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := repro.ForkMinMakespan(f, n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSpiderMinMakespan(b *testing.B) {
	// E5c/E7: Theorem 2 polynomiality of the spider algorithm, via the
	// memoized solver (one backward construction per leg, amortised over
	// the deadline binary search).
	g := platform.MustGenerator(5, 1, 9, platform.Uniform)
	sp := g.Spider(4, 3)
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := spider.MinMakespan(sp, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSpiderMinMakespanReference(b *testing.B) {
	// The unmemoized reference path on the same instances, kept so the
	// memoization's win stays measurable side by side.
	g := platform.MustGenerator(5, 1, 9, platform.Uniform)
	sp := g.Spider(4, 3)
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := spider.ReferenceMinMakespan(sp, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBaselines(b *testing.B) {
	// E8: heuristic scheduling cost on the instances of the comparison
	// table (the quality comparison itself is experiment E8).
	g := platform.MustGenerator(6, 1, 12, platform.Bimodal)
	ch := g.Chain(6)
	schedulers := []baseline.ChainScheduler{
		baseline.ForwardGreedy{}, baseline.RoundRobin{}, baseline.MasterOnly{},
	}
	for _, sc := range schedulers {
		b.Run(sc.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sc.Schedule(ch, 60); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("optimal-backward", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Schedule(ch, 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBounds(b *testing.B) {
	// E9: exact rational steady-state rate and the induced lower bound.
	ch := workload.LayeredChain(5, 2, 24)
	b.Run("chain-rate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.ChainRate(ch); err != nil {
				b.Fatal(err)
			}
		}
	})
	sp := workload.VolunteerSpider()
	b.Run("spider-rate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SpiderRate(sp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chain-lower-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.LowerBoundChain(ch, 320); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSimulator(b *testing.B) {
	// E10: DES throughput under online policies.
	sp := workload.VolunteerSpider()
	for _, pol := range []func() sim.Policy{
		func() sim.Policy { return sim.NewPull(1) },
		func() sim.Policy { return sim.NewPull(4) },
		func() sim.Policy { return sim.NewRandomPush(7) },
	} {
		name := pol().Name()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sp, 200, pol()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVerifyChain(b *testing.B) {
	g := platform.MustGenerator(8, 1, 9, platform.Uniform)
	ch := g.Chain(16)
	s, err := core.Schedule(ch, 2048)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
